(* The servable store: line-atomic appends under concurrency, the
   sharded repository and its compaction (including racing appenders),
   index-vs-fold semantic equivalence, the wire protocol, and the
   daemon end-to-end — a remote exact hit must return the same record
   bytes a local lookup would, and a dead daemon must degrade a warm
   start, never fail a search. *)

open Ft_store

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let temp_log () = Filename.temp_file "ft_svc_test" ".jsonl"

let temp_dir () =
  let path = Filename.temp_file "ft_svc_store" "" in
  Sys.remove path;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let target = Ft_schedule.Target.v100
let space_of graph = Ft_schedule.Space.make graph target
let gemm ~m ~n ~k = Ft_ir.Operators.gemm ~m ~n ~k

let record_of ?(method_name = "Q-method") ?(seed = 2020) ?(best = 100.)
    ?(config = "") space =
  let config =
    if config <> "" then config
    else Ft_schedule.Config_io.to_string (Ft_schedule.Space.default_config space)
  in
  {
    Record.key = Record.key_of_space space;
    method_name;
    seed;
    best_value = best;
    sim_time_s = 12.5;
    n_evals = 40;
    config;
    source = "analytical";
  }

(* --- satellite regression: line-atomic appends --- *)

(* A record whose line is far longer than the 64 KiB stdlib channel
   buffer, appended from concurrent domains: the old channel path
   flushed mid-line, interleaving appenders *inside* a line; the
   single-write path must keep every line whole. *)
let test_concurrent_big_appends_atomic () =
  let path = temp_log () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let n_domains = 4 and per_domain = 6 in
      let big_config seed = String.make 100_000 (Char.chr (Char.code 'a' + seed)) in
      let space = space_of (gemm ~m:64 ~n:64 ~k:64) in
      let go = Atomic.make false in
      let domains =
        List.init n_domains (fun d ->
            Domain.spawn (fun () ->
                while not (Atomic.get go) do Domain.cpu_relax () done;
                for i = 1 to per_domain do
                  Store_io.append_line path
                    (Record.to_json
                       (record_of ~seed:d ~best:(float_of_int ((d * 100) + i))
                          ~config:(big_config d) space))
                done))
      in
      Atomic.set go true;
      List.iter Domain.join domains;
      let store = Store.load path in
      check_int "no torn lines" 0 (List.length (Store.issues store));
      check_int "every record present" (n_domains * per_domain)
        (Store.length store);
      (* each line must be one writer's record, never an interleaving *)
      List.iter
        (fun r ->
          check_int "config from a single writer" 100_000
            (String.length r.Record.config);
          check_bool "single writer's bytes" true
            (String.for_all (fun c -> c = r.Record.config.[0]) r.Record.config))
        (Store.records store))

let test_concurrent_append_stress () =
  let path = temp_log () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let n_domains = 8 and per_domain = 50 in
      let space = space_of (gemm ~m:32 ~n:32 ~k:32) in
      let domains =
        List.init n_domains (fun d ->
            Domain.spawn (fun () ->
                for i = 1 to per_domain do
                  Store_io.append_line path
                    (Record.to_json
                       (record_of ~seed:((d * 1000) + i)
                          ~best:(float_of_int ((d * 1000) + i))
                          space))
                done))
      in
      List.iter Domain.join domains;
      let store = Store.load path in
      check_int "zero issues" 0 (List.length (Store.issues store));
      check_int "every record survives" (n_domains * per_domain)
        (Store.length store);
      let seeds =
        List.sort_uniq compare
          (List.map (fun r -> r.Record.seed) (Store.records store))
      in
      check_int "all writers represented, no duplicates"
        (n_domains * per_domain) (List.length seeds))

(* --- index semantics: the hash path must reproduce the fold path --- *)

(* Random streams of records into both the (index-backed) store and a
   reference fold over the raw list: best_exact and nearest must
   agree record-for-record, including the earliest-wins tie rule. *)
let reference_best ?method_name recs key =
  List.fold_left
    (fun best r ->
      let matches =
        Record.key_equal r.Record.key key
        && match method_name with
           | None -> true
           | Some m -> String.equal m r.Record.method_name
      in
      if not matches then best
      else
        match best with
        | Some b when b.Record.best_value >= r.Record.best_value -> best
        | _ -> Some r)
    None recs

let qcheck_index_matches_fold =
  QCheck.Test.make ~name:"index best_exact == reference fold" ~count:60
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Ft_util.Rng.create seed in
      let spaces =
        [ space_of (gemm ~m:32 ~n:32 ~k:32);
          space_of (gemm ~m:64 ~n:64 ~k:64);
          space_of (gemm ~m:64 ~n:32 ~k:32);
          space_of (Ft_ir.Operators.gemv ~m:64 ~k:64) ]
      in
      let methods = [ "Q-method"; "AutoTVM" ] in
      let store = Store.create () in
      let recs = ref [] in
      for i = 1 to 40 do
        let space = List.nth spaces (Ft_util.Rng.int rng (List.length spaces)) in
        let method_name =
          List.nth methods (Ft_util.Rng.int rng (List.length methods))
        in
        (* few distinct values, so ties actually occur *)
        let best = float_of_int (Ft_util.Rng.int rng 4) in
        let r = record_of ~method_name ~seed:i ~best space in
        Store.add store r;
        recs := !recs @ [ r ]
      done;
      List.for_all
        (fun space ->
          let key = Record.key_of_space space in
          List.for_all
            (fun method_name ->
              let indexed = Store.best_exact ?method_name store key in
              let folded = reference_best ?method_name !recs key in
              match (indexed, folded) with
              | None, None -> true
              | Some a, Some b ->
                  (* earliest-wins: the *same* record, not just an equal value *)
                  a.Record.seed = b.Record.seed
              | _ -> false)
            (None :: List.map Option.some methods))
        spaces)

(* --- sharded repository --- *)

let test_shard_roundtrip_and_reload () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let repo = Shard.open_dir dir in
      let s64 = space_of (gemm ~m:64 ~n:64 ~k:64) in
      let s128 = space_of (gemm ~m:128 ~n:128 ~k:128) in
      let gemv = space_of (Ft_ir.Operators.gemv ~m:64 ~k:64) in
      Shard.add repo (record_of ~best:10. s64);
      Shard.add repo (record_of ~best:30. s64);
      Shard.add repo (record_of ~best:20. s128);
      Shard.add repo (record_of ~best:40. gemv);
      check_int "records indexed" 4 (Shard.count repo);
      check_int "gemm and gemv shards" 2 (List.length (Shard.shards repo));
      (match Shard.best_exact ~method_name:"Q-method" repo (Record.key_of_space s64) with
      | Some r -> Alcotest.(check (float 0.)) "best of the key" 30. r.best_value
      | None -> Alcotest.fail "expected a hit");
      let near =
        Shard.nearest ~method_name:"Q-method" repo (Record.key_of_space s64)
      in
      check_int "same-operator neighbors only" 1 (List.length near);
      (* a fresh handle re-indexes the files identically *)
      let reloaded = Shard.open_dir dir in
      check_int "reload sees every record" 4 (Shard.count reloaded);
      check_int "reload has no issues" 0 (List.length (Shard.issues reloaded));
      match
        Shard.best_exact ~method_name:"Q-method" reloaded (Record.key_of_space s64)
      with
      | Some r -> Alcotest.(check (float 0.)) "reload serves same best" 30. r.best_value
      | None -> Alcotest.fail "expected a hit after reload")

let test_compaction_keeps_best_k () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let repo = Shard.open_dir ~k:2 dir in
      let space = space_of (gemm ~m:64 ~n:64 ~k:64) in
      List.iter
        (fun best -> Shard.add repo (record_of ~seed:(int_of_float best) ~best space))
        [ 5.; 9.; 1.; 7.; 3. ];
      Shard.add repo (record_of ~method_name:"AutoTVM" ~best:2. space);
      let kept, dropped = Shard.compact_all repo in
      check_int "k best per (key, method) kept" 3 kept;
      check_int "rest dropped" 3 dropped;
      let reloaded = Shard.open_dir dir in
      check_int "file rewritten to survivors" 3 (Shard.count reloaded);
      (match
         Shard.best_exact ~method_name:"Q-method" reloaded (Record.key_of_space space)
       with
      | Some r -> Alcotest.(check (float 0.)) "best survives" 9. r.best_value
      | None -> Alcotest.fail "expected the best to survive");
      match
        Shard.best_exact ~method_name:"AutoTVM" reloaded (Record.key_of_space space)
      with
      | Some r -> Alcotest.(check (float 0.)) "per-method best survives" 2. r.best_value
      | None -> Alcotest.fail "expected the AutoTVM record to survive")

(* Appenders racing repeated compactions: with k large enough that
   nothing is ever eligible for dropping, no record may be lost — a
   rename that strands a concurrent write would lose one. *)
let test_compaction_vs_appender_race () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let repo = Shard.open_dir ~k:10_000 dir in
      let space = space_of (gemm ~m:64 ~n:64 ~k:64) in
      let shard = Shard.shard_name (Record.key_of_space space) in
      let n_appenders = 4 and per_appender = 40 in
      let appenders =
        List.init n_appenders (fun d ->
            Domain.spawn (fun () ->
                for i = 1 to per_appender do
                  Shard.add repo
                    (record_of ~seed:((d * 1000) + i)
                       ~best:(float_of_int ((d * 1000) + i))
                       space)
                done))
      in
      for _ = 1 to 20 do
        ignore (Shard.compact repo shard)
      done;
      List.iter Domain.join appenders;
      ignore (Shard.compact repo shard);
      let reloaded = Shard.open_dir dir in
      check_int "reload has no issues" 0 (List.length (Shard.issues reloaded));
      check_int "no record lost to the race" (n_appenders * per_appender)
        (Shard.count reloaded))

(* --- wire protocol --- *)

let gen_key =
  let open QCheck.Gen in
  let str = string_size (int_range 0 12) in
  let dims = list_size (int_range 0 4) (int_range 1 4096) in
  map
    (fun (graph, (op, (tgt, (spatial, reduce)))) ->
      { Record.graph; op; target = tgt; spatial; reduce })
    (pair str (pair str (pair str (pair dims dims))))

let gen_record =
  let open QCheck.Gen in
  let finite_float =
    map
      (fun (mant, exp) -> Float.ldexp mant (exp - 30))
      (pair (float_bound_inclusive 1.) (int_range 0 60))
  in
  map
    (fun (key, (method_name, (seed, (best_value, (sim_time_s, (n_evals, config)))))) ->
      {
        Record.key;
        method_name;
        seed;
        best_value;
        sim_time_s;
        n_evals;
        config;
        source = "analytical";
      })
    (pair gen_key
       (pair (string_size (int_range 0 10))
          (pair nat
             (pair finite_float
                (pair finite_float (pair nat (string_size (int_range 0 40))))))))

let gen_request =
  let open QCheck.Gen in
  oneof
    [ return Protocol.Ping;
      return Protocol.Stats;
      map
        (fun (key, m) -> Protocol.Best { key; method_name = m })
        (pair gen_key (opt (string_size (int_range 0 8))));
      map
        (fun ((key, m), limit) -> Protocol.Nearest { key; method_name = m; limit })
        (pair (pair gen_key (opt (string_size (int_range 0 8)))) (int_range 0 10));
      map (fun r -> Protocol.Append r) gen_record ]

let gen_response =
  let open QCheck.Gen in
  oneof
    [ return Protocol.Pong;
      return Protocol.Appended;
      map (fun r -> Protocol.Hit r) (opt gen_record);
      map (fun rs -> Protocol.Neighbors rs) (list_size (int_range 0 5) gen_record);
      map
        (fun (count, shards) -> Protocol.Stats_reply { count; shards })
        (pair nat nat);
      map (fun m -> Protocol.Error m) (string_size (int_range 0 30)) ]

let qcheck_request_roundtrip =
  QCheck.Test.make ~name:"every request roundtrips the wire" ~count:300
    (QCheck.make gen_request) (fun req ->
      match Protocol.request_of_string (Protocol.request_to_string req) with
      | Ok parsed -> parsed = req
      | Error _ -> false)

let qcheck_response_roundtrip =
  QCheck.Test.make ~name:"every response roundtrips the wire" ~count:300
    (QCheck.make gen_response) (fun resp ->
      match Protocol.response_of_string (Protocol.response_to_string resp) with
      | Ok parsed -> parsed = resp
      | Error _ -> false)

let test_protocol_rejects_garbage () =
  List.iter
    (fun text ->
      check_bool ("request rejects " ^ text) true
        (Result.is_error (Protocol.request_of_string text));
      check_bool ("response rejects " ^ text) true
        (Result.is_error (Protocol.response_of_string text)))
    [ ""; "not json"; "{}"; "{\"req\":\"no-such\"}"; "[1]" ]

let test_frame_roundtrip_and_cap () =
  let path = Filename.temp_file "ft_svc_frame" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      Protocol.write_frame oc "hello";
      Protocol.write_frame oc "";
      Protocol.write_frame oc (String.make 70_000 'x');
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          (match Protocol.read_frame ic with
          | Ok p -> check_string "payload" "hello" p
          | Error e -> Alcotest.fail e);
          (match Protocol.read_frame ic with
          | Ok p -> check_string "empty payload" "" p
          | Error e -> Alcotest.fail e);
          (match Protocol.read_frame ic with
          | Ok p -> check_int "big payload" 70_000 (String.length p)
          | Error e -> Alcotest.fail e);
          check_bool "clean EOF is an error, not a hang" true
            (Result.is_error (Protocol.read_frame ic)));
      (* an absurd length prefix must be rejected before allocation *)
      let oc = open_out_bin path in
      output_string oc "999999999999\npayload";
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          check_bool "oversized frame rejected" true
            (Result.is_error (Protocol.read_frame ic))))

let test_parse_addr () =
  (match Protocol.parse_addr "127.0.0.1:4820" with
  | Ok (Unix.ADDR_INET (_, port)) -> check_int "host:port" 4820 port
  | _ -> Alcotest.fail "expected an inet addr");
  (match Protocol.parse_addr ":0" with
  | Ok (Unix.ADDR_INET (_, 0)) -> ()
  | _ -> Alcotest.fail ":PORT should be loopback");
  (match Protocol.parse_addr "unix:/tmp/x.sock" with
  | Ok (Unix.ADDR_UNIX path) -> check_string "unix path" "/tmp/x.sock" path
  | _ -> Alcotest.fail "expected a unix addr");
  List.iter
    (fun bad ->
      check_bool ("rejects " ^ bad) true
        (Result.is_error (Protocol.parse_addr bad)))
    [ ""; "nonsense:notaport"; "unix:" ]

(* --- daemon end-to-end --- *)

let with_server ?k f =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let repo = Shard.open_dir ?k dir in
      let server = Server.create ~repo ~listen:"127.0.0.1:0" () in
      let _t = Server.start server in
      Fun.protect
        ~finally:(fun () -> Server.stop server)
        (fun () -> f repo (Server.address server)))

let with_client addr f =
  match Client.connect addr with
  | Error msg -> Alcotest.fail ("connect: " ^ msg)
  | Ok client -> Fun.protect ~finally:(fun () -> Client.close client) (fun () -> f client)

let test_server_basic_requests () =
  with_server (fun repo addr ->
      with_client addr (fun client ->
          (match Client.ping client with
          | Ok () -> ()
          | Error e -> Alcotest.fail e);
          let space = space_of (gemm ~m:64 ~n:64 ~k:64) in
          let key = Record.key_of_space space in
          (match Client.best_exact ~method_name:"Q-method" client key with
          | Ok None -> ()
          | Ok (Some _) -> Alcotest.fail "empty store must miss"
          | Error e -> Alcotest.fail e);
          let record = record_of ~best:42. space in
          (match Client.append client record with
          | Ok () -> ()
          | Error e -> Alcotest.fail e);
          check_int "server indexed the append" 1 (Shard.count repo);
          (* the remote hit must be byte-identical to the local lookup *)
          (match Client.best_exact ~method_name:"Q-method" client key with
          | Ok (Some remote) ->
              let local =
                Option.get (Shard.best_exact ~method_name:"Q-method" repo key)
              in
              check_string "remote bytes == local bytes"
                (Record.to_json local) (Record.to_json remote)
          | Ok None -> Alcotest.fail "expected a hit"
          | Error e -> Alcotest.fail e);
          (* nearest over the wire *)
          (match Client.append client (record_of ~best:7. (space_of (gemm ~m:128 ~n:128 ~k:128))) with
          | Ok () -> ()
          | Error e -> Alcotest.fail e);
          (match Client.nearest ~method_name:"Q-method" client key with
          | Ok [ near ] ->
              check_string "neighbor shape" "gemm_128x128x128" near.Record.key.graph
          | Ok l -> Alcotest.fail (Printf.sprintf "expected 1 neighbor, got %d" (List.length l))
          | Error e -> Alcotest.fail e);
          match Client.stats client with
          | Ok (count, shards) ->
              check_int "stats count" 2 count;
              check_int "stats shards" 1 shards
          | Error e -> Alcotest.fail e))

(* A malformed payload must produce an Error response and leave the
   connection usable — a typo in one client must not kill its session. *)
let test_server_survives_malformed_request () =
  with_server (fun _repo addr ->
      let sockaddr = Result.get_ok (Protocol.parse_addr addr) in
      let fd = Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0 in
      Unix.connect fd sockaddr;
      let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          Protocol.write_frame oc "this is not json";
          (match Protocol.read_frame ic with
          | Ok payload -> (
              match Protocol.response_of_string payload with
              | Ok (Protocol.Error _) -> ()
              | _ -> Alcotest.fail "expected an Error response")
          | Error e -> Alcotest.fail e);
          Protocol.write_frame oc (Protocol.request_to_string Protocol.Ping);
          match Protocol.read_frame ic with
          | Ok payload ->
              check_bool "connection survived" true
                (Protocol.response_of_string payload = Ok Protocol.Pong)
          | Error e -> Alcotest.fail e))

let test_concurrent_clients () =
  with_server (fun repo addr ->
      let n_clients = 8 and per_client = 25 in
      let failures = Atomic.make 0 in
      let domains =
        List.init n_clients (fun d ->
            Domain.spawn (fun () ->
                with_client addr (fun client ->
                    for i = 1 to per_client do
                      let m = 32 * (1 + (d mod 3)) in
                      let record =
                        record_of ~seed:((d * 1000) + i)
                          ~best:(float_of_int ((d * 1000) + i))
                          (space_of (gemm ~m ~n:m ~k:m))
                      in
                      (match Client.append client record with
                      | Ok () -> ()
                      | Error _ -> Atomic.incr failures);
                      match Client.best_exact client record.Record.key with
                      | Ok (Some _) -> ()
                      | _ -> Atomic.incr failures
                    done)))
      in
      List.iter Domain.join domains;
      check_int "no request failed" 0 (Atomic.get failures);
      check_int "every append indexed" (n_clients * per_client) (Shard.count repo))

(* --- satellite regression: the accept loop's failure policy --- *)

(* Pure decision table, testable without provoking real EINTR or fd
   storms: the old loop matched only EINTR while running, so a stray
   ECONNABORTED killed the accept thread and EMFILE ended accepting
   forever. *)
let test_accept_decision_policy () =
  let check_decision what expected err =
    check_bool what true (Server.accept_decision ~stopping:false err = expected)
  in
  check_decision "EINTR retries immediately" Server.Retry Unix.EINTR;
  check_decision "ECONNABORTED retries immediately" Server.Retry
    Unix.ECONNABORTED;
  (match Server.accept_decision ~stopping:false Unix.EMFILE with
  | Server.Backoff s -> check_bool "EMFILE backs off, does not spin" true (s > 0.)
  | _ -> Alcotest.fail "EMFILE must back off, not die");
  (match Server.accept_decision ~stopping:false Unix.ENFILE with
  | Server.Backoff s -> check_bool "ENFILE backs off" true (s > 0.)
  | _ -> Alcotest.fail "ENFILE must back off, not die");
  (match Server.accept_decision ~stopping:false Unix.ENOMEM with
  | Server.Log_and_retry s ->
      check_bool "unexpected errors pause before retrying" true (s > 0.)
  | _ -> Alcotest.fail "unexpected errors must be logged and survived");
  (* while stopping, every accept failure (EBADF from the closed
     listen fd included) just ends the loop *)
  List.iter
    (fun err ->
      check_bool "stopping always stops" true
        (Server.accept_decision ~stopping:true err = Server.Stop))
    [ Unix.EBADF; Unix.EINTR; Unix.EMFILE; Unix.ENOMEM ]

(* A burst of connections that immediately drop must leave the accept
   loop alive for a well-behaved client afterwards. *)
let test_accept_survives_connection_burst () =
  with_server (fun _repo addr ->
      let sockaddr = Result.get_ok (Protocol.parse_addr addr) in
      for _ = 1 to 50 do
        let fd =
          Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0
        in
        Unix.connect fd sockaddr;
        Unix.close fd
      done;
      with_client addr (fun client ->
          match Client.ping client with
          | Ok () -> ()
          | Error e -> Alcotest.fail ("accept loop died after burst: " ^ e)))

(* --- satellite regression: client poisoning after transport loss --- *)

(* A fake daemon scripted frame-by-frame, to desync and to garble at
   will. *)
let with_scripted_server script f =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen fd 4;
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, port) -> port
    | _ -> assert false
  in
  let server =
    Thread.create
      (fun () ->
        let client, _ = Unix.accept fd in
        let ic = Unix.in_channel_of_descr client
        and oc = Unix.out_channel_of_descr client in
        (try script ic oc with _ -> ());
        (try Unix.close client with Unix.Unix_error _ -> ()))
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Thread.join server;
      Unix.close fd)
    (fun () -> f (Printf.sprintf "127.0.0.1:%d" port))

(* A truncated frame (transport died mid-response) leaves the stream
   desynced: the client must poison itself — every later call fails
   fast instead of reading garbage as a response to the wrong
   request. *)
let test_client_poisoned_after_truncated_frame () =
  with_scripted_server
    (fun ic oc ->
      ignore (Protocol.read_frame ic);
      (* promise 100 bytes, deliver 3, vanish *)
      output_string oc "100\nabc";
      flush oc)
    (fun addr ->
      with_client addr (fun client ->
          check_bool "not poisoned at connect" true
            (Client.poisoned client = None);
          (match Client.ping client with
          | Ok () -> Alcotest.fail "a truncated frame cannot be a pong"
          | Error _ -> ());
          (match Client.poisoned client with
          | Some _ -> ()
          | None -> Alcotest.fail "transport failure must poison the client");
          match Client.ping client with
          | Ok () -> Alcotest.fail "a poisoned client must not roundtrip"
          | Error msg ->
              check_bool "later calls fail fast, naming the poisoning" true
                (let lowered = String.lowercase_ascii msg in
                 let needle = "poisoned" in
                 let n = String.length lowered and m = String.length needle in
                 let rec scan i =
                   i + m <= n && (String.sub lowered i m = needle || scan (i + 1))
                 in
                 scan 0)))

(* A complete-but-unparseable frame is NOT a transport failure: frame
   boundaries held, so the connection stays usable. *)
let test_client_survives_garbage_frame () =
  with_scripted_server
    (fun ic oc ->
      ignore (Protocol.read_frame ic);
      Protocol.write_frame oc "this is not json";
      ignore (Protocol.read_frame ic);
      Protocol.write_frame oc (Protocol.response_to_string Protocol.Pong))
    (fun addr ->
      with_client addr (fun client ->
          (match Client.ping client with
          | Ok () -> Alcotest.fail "garbage cannot be a pong"
          | Error _ -> ());
          check_bool "garbage in one frame does not poison" true
            (Client.poisoned client = None);
          match Client.ping client with
          | Ok () -> ()
          | Error e -> Alcotest.fail ("connection should have survived: " ^ e)))

(* --- satellite regression: unix-socket claiming --- *)

(* A second daemon pointed at a live daemon's socket must refuse —
   the old behaviour silently unlinked the path, orphaning the first
   daemon (still accepting, but unreachable forever). *)
let test_second_daemon_refuses_live_socket () =
  let dir = temp_dir () in
  let sock = Filename.temp_file "ft_svc_live" ".sock" in
  Sys.remove sock;
  Fun.protect
    ~finally:(fun () ->
      rm_rf dir;
      if Sys.file_exists sock then Sys.remove sock)
    (fun () ->
      let repo = Shard.open_dir dir in
      let first = Server.create ~repo ~listen:("unix:" ^ sock) () in
      let _t = Server.start first in
      Fun.protect
        ~finally:(fun () -> Server.stop first)
        (fun () ->
          check_bool "the socket shows as live" true (Server.unix_socket_live sock);
          (match Server.create ~repo ~listen:("unix:" ^ sock) () with
          | exception Failure _ -> ()
          | second ->
              Server.stop second;
              Alcotest.fail "a second daemon must refuse a live socket");
          (* the refusal must not have disturbed the first daemon *)
          with_client ("unix:" ^ sock) (fun client ->
              match Client.ping client with
              | Ok () -> ()
              | Error e -> Alcotest.fail ("first daemon harmed: " ^ e))))

(* A stale socket file — its daemon died without unlinking — is
   provably dead (connect refused) and must be recycled. *)
let test_stale_socket_recycled () =
  let dir = temp_dir () in
  let sock = Filename.temp_file "ft_svc_stale" ".sock" in
  Sys.remove sock;
  Fun.protect
    ~finally:(fun () ->
      rm_rf dir;
      if Sys.file_exists sock then Sys.remove sock)
    (fun () ->
      (* leave a bound-but-dead socket file behind, as a crash would *)
      let dead = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind dead (Unix.ADDR_UNIX sock);
      Unix.close dead;
      check_bool "a dead socket shows as stale" false
        (Server.unix_socket_live sock);
      let repo = Shard.open_dir dir in
      let server = Server.create ~repo ~listen:("unix:" ^ sock) () in
      let _t = Server.start server in
      Fun.protect
        ~finally:(fun () -> Server.stop server)
        (fun () ->
          with_client ("unix:" ^ sock) (fun client ->
              match Client.ping client with
              | Ok () -> ()
              | Error e -> Alcotest.fail e)))

(* A path that exists but is not a socket is never touched. *)
let test_non_socket_path_never_touched () =
  let path = Filename.temp_file "ft_svc_notasock" ".txt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (match Server.claim_unix_path path with
      | exception Failure _ -> ()
      | () -> Alcotest.fail "claiming a non-socket path must refuse");
      check_bool "the file survives the refusal" true (Sys.file_exists path))

(* --- optimize against the daemon --- *)

let search_with ?remote ?(reuse = false) graph =
  let options = { Flextensor.default_options with n_trials = 12 } in
  Flextensor.optimize ~options ?remote ~reuse graph target

let test_optimize_remote_reuse () =
  with_server (fun _repo addr ->
      with_client addr (fun client ->
          let cold = search_with ~remote:client (gemm ~m:64 ~n:64 ~k:64) in
          check_bool "cold run searched" true
            (cold.provenance = Flextensor.Searched);
          let warm = search_with ~remote:client ~reuse:true (gemm ~m:64 ~n:64 ~k:64) in
          check_bool "remote exact hit reused" true
            (warm.provenance = Flextensor.Reused);
          check_int "zero fresh measurements" 0 warm.n_evals;
          check_bool "bit-for-bit value" true
            (Int64.equal
               (Int64.bits_of_float cold.perf_value)
               (Int64.bits_of_float warm.perf_value));
          (* a different shape warm-starts from the daemon's records *)
          let near = search_with ~remote:client ~reuse:true (gemm ~m:128 ~n:128 ~k:128) in
          match near.provenance with
          | Flextensor.Transferred n -> check_bool "remote transfer seeds" true (n > 0)
          | _ -> Alcotest.fail "expected a remote warm start"))

(* The library contract: mid-run transport failures degrade into
   misses.  A search against a stopped daemon must still complete
   (cold), bit-for-bit equal to a search with no repository at all. *)
let test_dead_daemon_degrades () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let repo = Shard.open_dir dir in
      let server = Server.create ~repo ~listen:"127.0.0.1:0" () in
      let _t = Server.start server in
      let client =
        match Client.connect (Server.address server) with
        | Ok c -> c
        | Error e -> Alcotest.fail e
      in
      Server.stop server;
      let dead = search_with ~remote:client ~reuse:true (gemm ~m:64 ~n:64 ~k:64) in
      Client.close client;
      let cold = search_with (gemm ~m:64 ~n:64 ~k:64) in
      check_bool "degraded to a cold search" true
        (dead.provenance = Flextensor.Searched);
      check_bool "bit-for-bit the cold result" true
        (Int64.equal
           (Int64.bits_of_float dead.perf_value)
           (Int64.bits_of_float cold.perf_value));
      check_bool "same config" true
        (Ft_schedule.Config.equal dead.config cold.config))

let test_unix_socket_transport () =
  let dir = temp_dir () in
  let sock = Filename.temp_file "ft_svc" ".sock" in
  Sys.remove sock;
  Fun.protect
    ~finally:(fun () ->
      rm_rf dir;
      if Sys.file_exists sock then Sys.remove sock)
    (fun () ->
      let repo = Shard.open_dir dir in
      let server = Server.create ~repo ~listen:("unix:" ^ sock) () in
      let _t = Server.start server in
      Fun.protect
        ~finally:(fun () -> Server.stop server)
        (fun () ->
          with_client ("unix:" ^ sock) (fun client ->
              match Client.ping client with
              | Ok () -> ()
              | Error e -> Alcotest.fail e)))

let () =
  Alcotest.run "ft_store_service"
    [
      ( "atomic append",
        [
          Alcotest.test_case "big lines, concurrent domains" `Quick
            test_concurrent_big_appends_atomic;
          Alcotest.test_case "append stress" `Quick test_concurrent_append_stress;
        ] );
      ( "index",
        [ QCheck_alcotest.to_alcotest qcheck_index_matches_fold ] );
      ( "shard",
        [
          Alcotest.test_case "roundtrip and reload" `Quick
            test_shard_roundtrip_and_reload;
          Alcotest.test_case "compaction best-k" `Quick test_compaction_keeps_best_k;
          Alcotest.test_case "compaction vs appenders" `Quick
            test_compaction_vs_appender_race;
        ] );
      ( "protocol",
        [
          QCheck_alcotest.to_alcotest qcheck_request_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_response_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_protocol_rejects_garbage;
          Alcotest.test_case "framing" `Quick test_frame_roundtrip_and_cap;
          Alcotest.test_case "addresses" `Quick test_parse_addr;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "basic requests" `Quick test_server_basic_requests;
          Alcotest.test_case "malformed request" `Quick
            test_server_survives_malformed_request;
          Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
          Alcotest.test_case "unix socket" `Quick test_unix_socket_transport;
        ] );
      ( "accept loop",
        [
          Alcotest.test_case "failure policy" `Quick test_accept_decision_policy;
          Alcotest.test_case "survives a connection burst" `Quick
            test_accept_survives_connection_burst;
        ] );
      ( "client poisoning",
        [
          Alcotest.test_case "truncated frame poisons" `Quick
            test_client_poisoned_after_truncated_frame;
          Alcotest.test_case "garbage frame does not" `Quick
            test_client_survives_garbage_frame;
        ] );
      ( "socket claiming",
        [
          Alcotest.test_case "live socket refused" `Quick
            test_second_daemon_refuses_live_socket;
          Alcotest.test_case "stale socket recycled" `Quick
            test_stale_socket_recycled;
          Alcotest.test_case "non-socket never touched" `Quick
            test_non_socket_path_never_touched;
        ] );
      ( "remote reuse",
        [
          Alcotest.test_case "exact hit and transfer" `Quick
            test_optimize_remote_reuse;
          Alcotest.test_case "dead daemon degrades" `Quick
            test_dead_daemon_degrades;
        ] );
    ]
