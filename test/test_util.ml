let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let test_rng_deterministic () =
  let a = Ft_util.Rng.create 42 and b = Ft_util.Rng.create 42 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Ft_util.Rng.next_int64 a = Ft_util.Rng.next_int64 b)
  done

let test_rng_int_bounds () =
  let rng = Ft_util.Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Ft_util.Rng.int rng 13 in
    check_bool "in range" true (x >= 0 && x < 13)
  done

let test_rng_float_bounds () =
  let rng = Ft_util.Rng.create 9 in
  for _ = 1 to 1_000 do
    let x = Ft_util.Rng.float rng 2.5 in
    check_bool "in range" true (x >= 0. && x < 2.5)
  done

let test_rng_split_independent () =
  let a = Ft_util.Rng.create 5 in
  let b = Ft_util.Rng.split a in
  check_bool "different streams" true
    (Ft_util.Rng.next_int64 a <> Ft_util.Rng.next_int64 b)

let test_rng_invalid () =
  let rng = Ft_util.Rng.create 1 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Ft_util.Rng.int rng 0));
  Alcotest.check_raises "choose []" (Invalid_argument "Rng.choose: empty list")
    (fun () -> ignore (Ft_util.Rng.choose rng []))

let test_rng_shuffle_permutation () =
  let rng = Ft_util.Rng.create 3 in
  let arr = Array.init 20 Fun.id in
  Ft_util.Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

(* Rejection sampling keeps every residue equally likely; the old
   `raw mod bound` draw was modulo-biased.  The bias at 62 bits is far
   below statistical resolution, so this is a sanity bound: a grossly
   broken draw (e.g. returning only small residues) fails it. *)
let test_rng_int_uniformity () =
  let rng = Ft_util.Rng.create 11 in
  let bound = 8 and draws = 40_000 in
  let buckets = Array.make bound 0 in
  for _ = 1 to draws do
    let x = Ft_util.Rng.int rng bound in
    buckets.(x) <- buckets.(x) + 1
  done;
  let expected = float_of_int draws /. float_of_int bound in
  let chi2 =
    Array.fold_left
      (fun acc n ->
        let d = float_of_int n -. expected in
        acc +. (d *. d /. expected))
      0. buckets
  in
  (* 7 degrees of freedom: P(chi2 > 24.3) ~ 0.001 *)
  check_bool (Printf.sprintf "chi-square %.2f within bounds" chi2) true (chi2 < 25.)

let test_rng_int_large_bounds () =
  (* Bounds near max_int exercise the rejection path: the acceptance
     window is barely over half the raw range. *)
  let rng = Ft_util.Rng.create 13 in
  let bound = (max_int / 2) + 1 in
  for _ = 1 to 1_000 do
    let x = Ft_util.Rng.int rng bound in
    check_bool "in range at huge bound" true (x >= 0 && x < bound)
  done

let test_divisors () =
  Alcotest.(check (list int)) "divisors 12" [ 1; 2; 3; 4; 6; 12 ]
    (Ft_util.Mathx.divisors 12);
  Alcotest.(check (list int)) "divisors 1" [ 1 ] (Ft_util.Mathx.divisors 1);
  Alcotest.(check (list int)) "divisors 7" [ 1; 7 ] (Ft_util.Mathx.divisors 7)

let test_prime_factors () =
  Alcotest.(check (list int)) "360" [ 2; 2; 2; 3; 3; 5 ] (Ft_util.Mathx.prime_factors 360);
  Alcotest.(check (list int)) "1" [] (Ft_util.Mathx.prime_factors 1);
  Alcotest.(check (option int)) "spf 1" None (Ft_util.Mathx.smallest_prime_factor 1);
  Alcotest.(check (option int)) "spf 15" (Some 3) (Ft_util.Mathx.smallest_prime_factor 15)

let test_factorizations () =
  let fs = Ft_util.Mathx.factorizations 12 2 in
  check_int "count 12 into 2" 6 (List.length fs);
  check_int "count 24 into 4" 80 (List.length (Ft_util.Mathx.factorizations 24 4));
  List.iter
    (fun f -> check_int "product" 24 (List.fold_left ( * ) 1 f))
    (Ft_util.Mathx.factorizations 24 4)

let test_count_factorizations_matches_enumeration () =
  List.iter
    (fun (n, k) ->
      check_int
        (Printf.sprintf "count %d into %d" n k)
        (List.length (Ft_util.Mathx.factorizations n k))
        (Ft_util.Mathx.count_factorizations n k))
    [ (1, 4); (7, 3); (12, 2); (24, 4); (36, 3); (64, 4); (100, 4); (210, 3) ]

let test_misc_math () =
  check_int "ilog2 1" 0 (Ft_util.Mathx.ilog2 1);
  check_int "ilog2 1024" 10 (Ft_util.Mathx.ilog2 1024);
  check_int "pow" 243 (Ft_util.Mathx.pow 3 5);
  check_int "gcd" 6 (Ft_util.Mathx.gcd 54 24);
  check_int "ceil_div" 4 (Ft_util.Mathx.ceil_div 10 3);
  check_int "round_up" 12 (Ft_util.Mathx.round_up_to 10 3);
  check_int "clamp" 5 (Ft_util.Mathx.clamp 0 5 9);
  check_int "binomial" 10 (Ft_util.Mathx.binomial 5 2);
  check_int "permutations" 24 (List.length (Ft_util.Mathx.permutations [ 1; 2; 3; 4 ]))

(* Regression: the pivot used to be removed with List.filter, deleting
   every duplicate at once — [2; 2] produced [[2]] instead of [[2; 2]]. *)
let test_permutations_with_duplicates () =
  Alcotest.(check (list (list int))) "two equal elements" [ [ 2; 2 ] ]
    (Ft_util.Mathx.permutations [ 2; 2 ]);
  Alcotest.(check (list (list int))) "multiset 1 1 2"
    [ [ 1; 1; 2 ]; [ 1; 2; 1 ]; [ 2; 1; 1 ] ]
    (List.sort compare (Ft_util.Mathx.permutations [ 1; 1; 2 ]));
  (* distinct permutations of a multiset: 4!/2!2! = 6, each length 4 *)
  let perms = Ft_util.Mathx.permutations [ 3; 3; 5; 5 ] in
  check_int "multiset count" 6 (List.length perms);
  check_int "no duplicates" 6 (List.length (List.sort_uniq compare perms));
  List.iter
    (fun p -> Alcotest.(check (list int)) "same multiset" [ 3; 3; 5; 5 ]
        (List.sort compare p))
    perms

let test_stats () =
  check_float "mean" 2.5 (Ft_util.Stats.mean [ 1.; 2.; 3.; 4. ]);
  check_float "geomean" 2. (Ft_util.Stats.geomean [ 1.; 4. ]);
  check_float "min" 1. (Ft_util.Stats.minimum [ 3.; 1.; 2. ]);
  check_float "max" 3. (Ft_util.Stats.maximum [ 3.; 1.; 2. ]);
  Alcotest.(check (list (float 1e-9))) "normalize" [ 0.5; 1. ]
    (Ft_util.Stats.normalize_to_max [ 2.; 4. ]);
  Alcotest.(check (list (float 1e-9))) "ratios" [ 2.; 3. ]
    (Ft_util.Stats.ratio_list ~num:[ 4.; 9. ] ~den:[ 2.; 3. ])

let test_stats_invalid () =
  Alcotest.check_raises "geomean empty" (Invalid_argument "Stats.geomean: empty list")
    (fun () -> ignore (Ft_util.Stats.geomean []));
  Alcotest.check_raises "geomean nonpositive"
    (Invalid_argument "Stats.geomean: requires positive values") (fun () ->
      ignore (Ft_util.Stats.geomean [ 1.; 0. ]))

let test_table_render () =
  let out = Ft_util.Table.render ~header:[ "a"; "b" ] [ [ "1"; "22" ]; [ "333"; "4" ] ] in
  check_bool "contains separator" true (String.length out > 0);
  check_bool "has rows" true (List.length (String.split_on_char '\n' out) = 4);
  Alcotest.check_raises "ragged" (Invalid_argument "Table.render: ragged row")
    (fun () -> ignore (Ft_util.Table.render ~header:[ "a" ] [ [ "1"; "2" ] ]))

let test_chart () =
  let out = Ft_util.Chart.bar_chart ~title:"t" [ ("x", 1.); ("y", 2.) ] in
  check_bool "bar chart mentions labels" true
    (String.length out > 10);
  let out =
    Ft_util.Chart.series ~title:"s" ~x_label:"time" ~y_label:"perf"
      [ ("m", [ (0., 1.); (1., 2.) ]) ]
  in
  check_bool "series non-empty" true (String.length out > 10)

let qcheck_factor_product =
  QCheck.Test.make ~name:"factorizations multiply back" ~count:50
    QCheck.(pair (int_range 1 200) (int_range 1 4))
    (fun (n, k) ->
      List.for_all
        (fun f -> List.fold_left ( * ) 1 f = n)
        (Ft_util.Mathx.factorizations n k))

let qcheck_divisors_divide =
  QCheck.Test.make ~name:"divisors divide" ~count:100
    QCheck.(int_range 1 5000)
    (fun n -> List.for_all (fun d -> n mod d = 0) (Ft_util.Mathx.divisors n))

let () =
  Alcotest.run "ft_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "invalid args" `Quick test_rng_invalid;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "int uniformity" `Quick test_rng_int_uniformity;
          Alcotest.test_case "int large bounds" `Quick test_rng_int_large_bounds;
        ] );
      ( "mathx",
        [
          Alcotest.test_case "divisors" `Quick test_divisors;
          Alcotest.test_case "prime factors" `Quick test_prime_factors;
          Alcotest.test_case "factorizations" `Quick test_factorizations;
          Alcotest.test_case "closed-form count" `Quick
            test_count_factorizations_matches_enumeration;
          Alcotest.test_case "misc" `Quick test_misc_math;
          Alcotest.test_case "permutations with duplicates" `Quick
            test_permutations_with_duplicates;
          QCheck_alcotest.to_alcotest qcheck_factor_product;
          QCheck_alcotest.to_alcotest qcheck_divisors_divide;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats;
          Alcotest.test_case "invalid" `Quick test_stats_invalid;
        ] );
      ( "render",
        [
          Alcotest.test_case "table" `Quick test_table_render;
          Alcotest.test_case "chart" `Quick test_chart;
        ] );
    ]
