let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let test_rng_deterministic () =
  let a = Ft_util.Rng.create 42 and b = Ft_util.Rng.create 42 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Ft_util.Rng.next_int64 a = Ft_util.Rng.next_int64 b)
  done

let test_rng_int_bounds () =
  let rng = Ft_util.Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Ft_util.Rng.int rng 13 in
    check_bool "in range" true (x >= 0 && x < 13)
  done

let test_rng_float_bounds () =
  let rng = Ft_util.Rng.create 9 in
  for _ = 1 to 1_000 do
    let x = Ft_util.Rng.float rng 2.5 in
    check_bool "in range" true (x >= 0. && x < 2.5)
  done

let test_rng_split_independent () =
  let a = Ft_util.Rng.create 5 in
  let b = Ft_util.Rng.split a in
  check_bool "different streams" true
    (Ft_util.Rng.next_int64 a <> Ft_util.Rng.next_int64 b)

let test_rng_invalid () =
  let rng = Ft_util.Rng.create 1 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Ft_util.Rng.int rng 0));
  Alcotest.check_raises "choose []" (Invalid_argument "Rng.choose: empty list")
    (fun () -> ignore (Ft_util.Rng.choose rng []))

let test_rng_shuffle_permutation () =
  let rng = Ft_util.Rng.create 3 in
  let arr = Array.init 20 Fun.id in
  Ft_util.Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

let test_divisors () =
  Alcotest.(check (list int)) "divisors 12" [ 1; 2; 3; 4; 6; 12 ]
    (Ft_util.Mathx.divisors 12);
  Alcotest.(check (list int)) "divisors 1" [ 1 ] (Ft_util.Mathx.divisors 1);
  Alcotest.(check (list int)) "divisors 7" [ 1; 7 ] (Ft_util.Mathx.divisors 7)

let test_prime_factors () =
  Alcotest.(check (list int)) "360" [ 2; 2; 2; 3; 3; 5 ] (Ft_util.Mathx.prime_factors 360);
  Alcotest.(check (list int)) "1" [] (Ft_util.Mathx.prime_factors 1);
  Alcotest.(check (option int)) "spf 1" None (Ft_util.Mathx.smallest_prime_factor 1);
  Alcotest.(check (option int)) "spf 15" (Some 3) (Ft_util.Mathx.smallest_prime_factor 15)

let test_factorizations () =
  let fs = Ft_util.Mathx.factorizations 12 2 in
  check_int "count 12 into 2" 6 (List.length fs);
  check_int "count 24 into 4" 80 (List.length (Ft_util.Mathx.factorizations 24 4));
  List.iter
    (fun f -> check_int "product" 24 (List.fold_left ( * ) 1 f))
    (Ft_util.Mathx.factorizations 24 4)

let test_count_factorizations_matches_enumeration () =
  List.iter
    (fun (n, k) ->
      check_int
        (Printf.sprintf "count %d into %d" n k)
        (List.length (Ft_util.Mathx.factorizations n k))
        (Ft_util.Mathx.count_factorizations n k))
    [ (1, 4); (7, 3); (12, 2); (24, 4); (36, 3); (64, 4); (100, 4); (210, 3) ]

let test_misc_math () =
  check_int "ilog2 1" 0 (Ft_util.Mathx.ilog2 1);
  check_int "ilog2 1024" 10 (Ft_util.Mathx.ilog2 1024);
  check_int "pow" 243 (Ft_util.Mathx.pow 3 5);
  check_int "gcd" 6 (Ft_util.Mathx.gcd 54 24);
  check_int "ceil_div" 4 (Ft_util.Mathx.ceil_div 10 3);
  check_int "round_up" 12 (Ft_util.Mathx.round_up_to 10 3);
  check_int "clamp" 5 (Ft_util.Mathx.clamp 0 5 9);
  check_int "binomial" 10 (Ft_util.Mathx.binomial 5 2);
  check_int "permutations" 24 (List.length (Ft_util.Mathx.permutations [ 1; 2; 3; 4 ]))

let test_stats () =
  check_float "mean" 2.5 (Ft_util.Stats.mean [ 1.; 2.; 3.; 4. ]);
  check_float "geomean" 2. (Ft_util.Stats.geomean [ 1.; 4. ]);
  check_float "min" 1. (Ft_util.Stats.minimum [ 3.; 1.; 2. ]);
  check_float "max" 3. (Ft_util.Stats.maximum [ 3.; 1.; 2. ]);
  Alcotest.(check (list (float 1e-9))) "normalize" [ 0.5; 1. ]
    (Ft_util.Stats.normalize_to_max [ 2.; 4. ]);
  Alcotest.(check (list (float 1e-9))) "ratios" [ 2.; 3. ]
    (Ft_util.Stats.ratio_list ~num:[ 4.; 9. ] ~den:[ 2.; 3. ])

let test_stats_invalid () =
  Alcotest.check_raises "geomean empty" (Invalid_argument "Stats.geomean: empty list")
    (fun () -> ignore (Ft_util.Stats.geomean []));
  Alcotest.check_raises "geomean nonpositive"
    (Invalid_argument "Stats.geomean: requires positive values") (fun () ->
      ignore (Ft_util.Stats.geomean [ 1.; 0. ]))

let test_table_render () =
  let out = Ft_util.Table.render ~header:[ "a"; "b" ] [ [ "1"; "22" ]; [ "333"; "4" ] ] in
  check_bool "contains separator" true (String.length out > 0);
  check_bool "has rows" true (List.length (String.split_on_char '\n' out) = 4);
  Alcotest.check_raises "ragged" (Invalid_argument "Table.render: ragged row")
    (fun () -> ignore (Ft_util.Table.render ~header:[ "a" ] [ [ "1"; "2" ] ]))

let test_chart () =
  let out = Ft_util.Chart.bar_chart ~title:"t" [ ("x", 1.); ("y", 2.) ] in
  check_bool "bar chart mentions labels" true
    (String.length out > 10);
  let out =
    Ft_util.Chart.series ~title:"s" ~x_label:"time" ~y_label:"perf"
      [ ("m", [ (0., 1.); (1., 2.) ]) ]
  in
  check_bool "series non-empty" true (String.length out > 10)

let qcheck_factor_product =
  QCheck.Test.make ~name:"factorizations multiply back" ~count:50
    QCheck.(pair (int_range 1 200) (int_range 1 4))
    (fun (n, k) ->
      List.for_all
        (fun f -> List.fold_left ( * ) 1 f = n)
        (Ft_util.Mathx.factorizations n k))

let qcheck_divisors_divide =
  QCheck.Test.make ~name:"divisors divide" ~count:100
    QCheck.(int_range 1 5000)
    (fun n -> List.for_all (fun d -> n mod d = 0) (Ft_util.Mathx.divisors n))

let () =
  Alcotest.run "ft_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "invalid args" `Quick test_rng_invalid;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
        ] );
      ( "mathx",
        [
          Alcotest.test_case "divisors" `Quick test_divisors;
          Alcotest.test_case "prime factors" `Quick test_prime_factors;
          Alcotest.test_case "factorizations" `Quick test_factorizations;
          Alcotest.test_case "closed-form count" `Quick
            test_count_factorizations_matches_enumeration;
          Alcotest.test_case "misc" `Quick test_misc_math;
          QCheck_alcotest.to_alcotest qcheck_factor_product;
          QCheck_alcotest.to_alcotest qcheck_divisors_divide;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats;
          Alcotest.test_case "invalid" `Quick test_stats_invalid;
        ] );
      ( "render",
        [
          Alcotest.test_case "table" `Quick test_table_render;
          Alcotest.test_case "chart" `Quick test_chart;
        ] );
    ]
