let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_yolo_table4 () =
  check_int "15 distinct layers" 15 (List.length Ft_workloads.Yolo.layers);
  let c1 = Ft_workloads.Yolo.find "C1" in
  check_int "C1 in channels" 3 c1.c;
  check_int "C1 out channels" 64 c1.k;
  check_int "C1 size" 448 c1.hw;
  check_int "C1 kernel" 7 c1.kernel;
  check_int "C1 stride" 2 c1.stride;
  let c14 = Ft_workloads.Yolo.find "C14" in
  check_int "C14 stride" 2 c14.stride;
  let c15 = Ft_workloads.Yolo.find "C15" in
  check_int "C15 size" 7 c15.hw

let test_yolo_full_network () =
  check_int "24 conv layers" 24 (List.length Ft_workloads.Yolo.full_network)

let test_yolo_graph_shape () =
  let graph = Ft_workloads.Yolo.graph (Ft_workloads.Yolo.find "C1") in
  (* 448 with k7 s2 pad3: (448 + 6 - 7)/2 + 1 = 224 *)
  Alcotest.(check (list int)) "C1 output" [ 1; 64; 224; 224 ]
    (Ft_ir.Op.out_shape (Ft_ir.Op.output_op graph))

let test_overfeat () =
  check_int "5 conv layers" 5 (List.length Ft_workloads.Overfeat.layers);
  let conv1 = List.hd Ft_workloads.Overfeat.layers in
  let graph = Ft_workloads.Overfeat.graph conv1 in
  (* (231 - 11)/4 + 1 = 56 *)
  Alcotest.(check (list int)) "conv1 output" [ 1; 96; 56; 56 ]
    (Ft_ir.Op.out_shape (Ft_ir.Op.output_op graph))

(* Table 3's Test Cases column. *)
let test_suite_case_counts () =
  let expect =
    [ ("GMV", 6); ("GMM", 7); ("BIL", 5); ("C1D", 7); ("T1D", 7); ("C2D", 15);
      ("T2D", 15); ("C3D", 8); ("T3D", 8); ("GRP", 14); ("DEP", 7); ("DIL", 11) ]
  in
  List.iter
    (fun (abbr, n) ->
      check_int (abbr ^ " case count") n
        (List.length (Ft_workloads.Suites.find abbr)))
    expect;
  check_int "12 benchmarks" 12 (List.length Ft_workloads.Suites.all)

let test_all_cases_validate () =
  List.iter
    (fun (abbr, cases) ->
      List.iter
        (fun (case : Ft_workloads.Suites.case) ->
          check_bool
            (Printf.sprintf "%s/%s validates" abbr case.case_name)
            true
            (Result.is_ok (Ft_ir.Op.validate case.graph)))
        cases)
    Ft_workloads.Suites.all

let test_unknown_suite () =
  Alcotest.check_raises "unknown" (Invalid_argument "Suites.find: unknown operator XXX")
    (fun () -> ignore (Ft_workloads.Suites.find "XXX"))

let () =
  Alcotest.run "ft_workloads"
    [
      ( "yolo",
        [
          Alcotest.test_case "table 4" `Quick test_yolo_table4;
          Alcotest.test_case "full network" `Quick test_yolo_full_network;
          Alcotest.test_case "graph shapes" `Quick test_yolo_graph_shape;
        ] );
      ("overfeat", [ Alcotest.test_case "layers" `Quick test_overfeat ]);
      ( "suites",
        [
          Alcotest.test_case "case counts" `Quick test_suite_case_counts;
          Alcotest.test_case "all validate" `Quick test_all_cases_validate;
          Alcotest.test_case "unknown" `Quick test_unknown_suite;
        ] );
    ]
